package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/didclab/eta/internal/core"
	"github.com/didclab/eta/internal/dataset"
	"github.com/didclab/eta/internal/sched"
	"github.com/didclab/eta/internal/testbed"
	"github.com/didclab/eta/internal/transfer"
	"github.com/didclab/eta/internal/units"
)

// Ablation quantifies one design choice: the same run with the choice
// present (Baseline) and removed (Variant).
type Ablation struct {
	Name     string
	Choice   string // what the design choice is
	Baseline transfer.Report
	Variant  transfer.Report
	// Extra carries ablation-specific detail (e.g. probe counts).
	Extra string
}

// ThroughputDelta returns the variant's throughput change in percent.
func (a Ablation) ThroughputDelta() float64 {
	if a.Baseline.Throughput <= 0 {
		return 0
	}
	return (float64(a.Variant.Throughput)/float64(a.Baseline.Throughput) - 1) * 100
}

// EnergyDelta returns the variant's end-system energy change in percent.
func (a Ablation) EnergyDelta() float64 {
	if a.Baseline.EndSystemEnergy <= 0 {
		return 0
	}
	return (float64(a.Variant.EndSystemEnergy)/float64(a.Baseline.EndSystemEnergy) - 1) * 100
}

// RunAblations isolates the design choices DESIGN.md calls out, on the
// given testbed:
//
//  1. MinE's Large-chunk pinning — unpin it and watch the power draw
//     rise (the paper's claim is about power: "using more concurrent
//     channels for large files causes more power consumption"; on a
//     tail-dominated workload the shorter duration can still win on
//     total energy, which the table records honestly),
//  2. pipelining — force depth 1 under ProMC and watch the small-file
//     chunk drag throughput down,
//  3. HTEE's stride-2 search — stride 1 doubles the probes for little
//     gain; stride 4 risks missing the sweet spot,
//  4. GO's channel spreading — packing one server per site removes most
//     of GO's energy premium.
func RunAblations(ctx context.Context, tb testbed.Testbed, seed int64) ([]Ablation, error) {
	ds := tb.Dataset(seed)
	conc := tb.MaxConcurrency
	sim := func() transfer.Executor { return transfer.NewSim(tb) }

	// Each ablation builds its own workload and runs its own sims, so
	// the four variants fan out on the worker pool; the result slice is
	// indexed by ablation so the table order never depends on timing.
	builders := []func(ctx context.Context) (Ablation, error){
		// 1. MinE large-chunk pinning, on a bimodal workload whose tail
		// is the Large chunk (on the standard dataset the Medium chunk
		// is the straggler either way, which would mask the choice
		// under test).
		func(ctx context.Context) (Ablation, error) {
			g := dataset.NewGenerator(seed)
			bimodal := dataset.Dataset{}
			bimodal.Files = append(bimodal.Files, g.ManySmall(800, 3*units.MB, 30*units.MB).Files...)
			largePart := g.Mixed(units.Bytes(float64(tb.DatasetSize)*0.6), 20*tb.Path.BDP(), tb.MaxFile)
			for i := range largePart.Files {
				largePart.Files[i].Name = "large/" + largePart.Files[i].Name
			}
			bimodal.Files = append(bimodal.Files, largePart.Files...)

			pinned, err := core.MinE(ctx, sim(), bimodal, conc)
			if err != nil {
				return Ablation{}, fmt.Errorf("MinE baseline: %w", err)
			}
			unpinned, err := core.MinEWith(ctx, sim(), bimodal, conc, core.MinEOptions{UnpinLargeChunks: true})
			if err != nil {
				return Ablation{}, fmt.Errorf("MinE unpinned: %w", err)
			}
			return Ablation{
				Name:     "MinE-unpin-large",
				Choice:   "MinE pins Large chunks to one channel",
				Baseline: pinned,
				Variant:  unpinned,
				Extra:    "bimodal small+large workload",
			}, nil
		},
		// 2. Pipelining under ProMC, on the workload pipelining exists
		// for: thousands of files each well below the BDP (§2.1).
		func(ctx context.Context) (Ablation, error) {
			smallHeavy := dataset.NewGenerator(seed+1).ManySmall(4000,
				maxBytes(tb.MinFile, tb.Path.BDP()/16), maxBytes(2*tb.MinFile, tb.Path.BDP()/8))
			piped, err := core.ProMC(ctx, sim(), smallHeavy, conc)
			if err != nil {
				return Ablation{}, fmt.Errorf("ProMC baseline: %w", err)
			}
			unpiped, err := core.ProMCWith(ctx, sim(), smallHeavy, conc, core.ProMCOptions{PipeliningOverride: 1})
			if err != nil {
				return Ablation{}, fmt.Errorf("ProMC unpipelined: %w", err)
			}
			return Ablation{
				Name:     "ProMC-no-pipelining",
				Choice:   "pipelining = ⌈BDP/avgFileSize⌉ per chunk",
				Baseline: piped,
				Variant:  unpiped,
				Extra:    fmt.Sprintf("%d files ≪ BDP", smallHeavy.Count()),
			}, nil
		},
		// 3. HTEE search stride.
		func(ctx context.Context) (Ablation, error) {
			var strideReports []string
			base, err := core.HTEE(ctx, sim(), ds, conc)
			if err != nil {
				return Ablation{}, fmt.Errorf("HTEE baseline: %w", err)
			}
			var stride4 core.HTEEResult
			for _, stride := range []int{1, 4} {
				r, err := core.HTEEWith(ctx, sim(), ds, conc, core.HTEEOptions{SearchStride: stride})
				if err != nil {
					return Ablation{}, fmt.Errorf("HTEE stride %d: %w", stride, err)
				}
				strideReports = append(strideReports,
					fmt.Sprintf("stride %d: %d probes, chose cc=%d", stride, len(r.SearchEfficiency), r.ChosenConcurrency))
				if stride == 4 {
					stride4 = r
				}
			}
			return Ablation{
				Name:     "HTEE-search-stride",
				Choice:   "HTEE probes every second concurrency level",
				Baseline: base.Report,
				Variant:  stride4.Report,
				Extra: fmt.Sprintf("stride 2 (paper): %d probes, chose cc=%d; %s",
					len(base.SearchEfficiency), base.ChosenConcurrency, strings.Join(strideReports, "; ")),
			}, nil
		},
		// 4. GO channel spreading.
		func(ctx context.Context) (Ablation, error) {
			spread, err := core.GO(ctx, sim(), ds)
			if err != nil {
				return Ablation{}, fmt.Errorf("GO baseline: %w", err)
			}
			packed, err := core.GOWith(ctx, sim(), ds, core.GOOptions{PackSingleServer: true})
			if err != nil {
				return Ablation{}, fmt.Errorf("GO packed: %w", err)
			}
			return Ablation{
				Name:     "GO-pack-single-server",
				Choice:   "GO spreads channels across the site's server pool",
				Baseline: spread,
				Variant:  packed,
			}, nil
		},
	}
	return sched.Map(ctx, 0, len(builders), func(ctx context.Context, i int) (Ablation, error) {
		return builders[i](ctx)
	})
}

func maxBytes(a, b units.Bytes) units.Bytes {
	if a > b {
		return a
	}
	return b
}

// MarkdownAblations renders the ablation table.
func MarkdownAblations(tb string, ablations []Ablation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n**Ablations on %s (design-choice removed → deltas vs. baseline)**\n\n", tb)
	b.WriteString("| ablation | throughput Δ | energy Δ | notes |\n|---|---|---|---|\n")
	for _, a := range ablations {
		fmt.Fprintf(&b, "| %s | %+.1f%% | %+.1f%% | %s |\n",
			a.Name, a.ThroughputDelta(), a.EnergyDelta(), a.Extra)
	}
	return b.String()
}

// CheckAblations asserts the direction each design choice was made for:
// unpinning Large raises MinE's power draw, removing pipelining lowers
// ProMC's throughput, and packing GO on one server lowers its energy.
func CheckAblations(ablations []Ablation) []Check {
	byName := map[string]Ablation{}
	for _, a := range ablations {
		byName[a.Name] = a
	}
	var checks []Check
	if a, ok := byName["MinE-unpin-large"]; ok {
		powerDelta := 0.0
		if a.Baseline.AvgPower > 0 {
			powerDelta = (float64(a.Variant.AvgPower)/float64(a.Baseline.AvgPower) - 1) * 100
		}
		checks = append(checks, check("unpinning Large chunks raises MinE power draw",
			powerDelta > 10, "avg power %+.1f%% (energy %+.1f%%, throughput %+.1f%%)",
			powerDelta, a.EnergyDelta(), a.ThroughputDelta()))
	}
	if a, ok := byName["ProMC-no-pipelining"]; ok {
		checks = append(checks, check("removing pipelining lowers ProMC throughput",
			a.ThroughputDelta() < -2, "throughput %+.1f%%", a.ThroughputDelta()))
	}
	if a, ok := byName["GO-pack-single-server"]; ok {
		checks = append(checks, check("packing GO on one server saves energy",
			a.EnergyDelta() < -10, "energy %+.1f%%", a.EnergyDelta()))
	}
	if a, ok := byName["HTEE-search-stride"]; ok {
		// Stride 4 must not beat the paper's stride 2 on efficiency by
		// more than noise — i.e. stride 2 is a sane default.
		checks = append(checks, check("stride-2 search is not dominated by stride 4",
			a.Variant.Efficiency() <= a.Baseline.Efficiency()*1.10,
			"stride2 eff %.4f vs stride4 %.4f", a.Baseline.Efficiency(), a.Variant.Efficiency()))
	}
	return checks
}
